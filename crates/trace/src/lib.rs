//! `mmm-trace`: the simulator's observability layer.
//!
//! Three pieces, usable independently:
//!
//! * **Event tracing** — a typed, cycle-stamped [`Event`] taxonomy
//!   recorded through a cheap [`Tracer`] handle into a bounded
//!   [`RingSink`] (or discarded by the zero-overhead [`NullSink`]
//!   default). When tracing is off, `Tracer::emit` is a single branch
//!   and the event payload is never constructed.
//! * **Metrics** — a [`MetricsRegistry`] of named counters, gauges,
//!   histograms, and running stats into which every component's
//!   statistics export, giving one flat, mergeable namespace.
//! * **Flight recorder** — a [`Sampler`] that snapshots the registry
//!   every N simulated cycles into a compact [`MetricsSeries`]
//!   (counter deltas, gauge last-values, histogram deltas),
//!   exportable as `metrics.jsonl` or Perfetto counter tracks. Off by
//!   default and free when off.
//! * **Self-profiler** — a [`Profiler`] of scoped timers attributing
//!   *host* wall-time to named hot-loop phases ([`ProfPhase`]), plus
//!   wheel/skip introspection counters, exportable as a `profile`
//!   JSON section or a speedscope file. Off by default; one branch
//!   per probe when off, and purely observational when on.
//! * **Fault forensics** — a [`Forensics`] recorder giving every
//!   injected fault a causal lifecycle record ([`FaultRecord`]):
//!   injection site/core/mode, the chain of architectural effects,
//!   the terminal verdict, and — on an escape — a black-box dump of
//!   the struck core's recent events. Off by default and free when
//!   off; exported as `*.faults.jsonl` and Perfetto async spans.
//! * **Exporters** — a hand-rolled [`json`] serializer (the build is
//!   offline; no serde) feeding [`chrome_trace`] (Perfetto-viewable
//!   per-core timelines) and JSONL report lines.
//!
//! ```
//! use mmm_trace::{chrome_trace, Event, Tracer};
//! use mmm_types::CoreId;
//!
//! let tracer = Tracer::ring(1024);
//! tracer.emit(42, || Event::PabDeny { core: CoreId(3), page: 7 });
//! let trace_json = chrome_trace(&tracer.snapshot(), 16, 100);
//! assert!(trace_json.contains("pab_deny"));
//!
//! let silent = Tracer::default(); // NullSink: costs one branch
//! silent.emit(43, || unreachable!("never built"));
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod chrome;
pub mod event;
pub mod forensics;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod sampler;
pub mod sink;

pub use aggregate::{registry_from_json, registry_to_json};
pub use chrome::{
    chrome_trace, chrome_trace_full, chrome_trace_with_counters, forensics_span_events,
};
pub use event::{Event, SchedAction, TraceRecord, TransitionKind};
pub use forensics::{
    ChainLink, FaultRecord, FaultVerdict, Forensics, ForensicsReport, FORENSICS_WINDOW,
};
pub use json::Json;
pub use metrics::MetricsRegistry;
pub use profile::{ProfPhase, ProfScope, ProfileReport, Profiler};
pub use sampler::{MetricsSample, MetricsSeries, Sampler};
pub use sink::{NullSink, RingSink, TraceSink, Tracer};
