//! A minimal hand-rolled JSON value tree and serializer.
//!
//! The build is fully offline, so the exporters cannot lean on serde.
//! This module provides exactly what they need: a value tree, correct
//! string escaping, and deterministic rendering (object keys keep
//! insertion order; callers that need stable output insert in a stable
//! order).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, rendered without a decimal point.
    U64(u64),
    /// A signed integer, rendered without a decimal point.
    I64(i64),
    /// A float. Non-finite values render as `null` (JSON has no NaN).
    F64(f64),
    /// A string, escaped on render.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Rust's shortest-roundtrip Display is valid JSON
                    // for finite floats.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Appends `s` as a quoted, escaped JSON string.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes a string for embedding in JSON (including the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_escaped(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(42).render(), "42");
        assert_eq!(Json::I64(-7).render(), "-7");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape_specials() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(escape("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(escape("ctrl\u{01}"), "\"ctrl\\u0001\"");
        // Unicode passes through unescaped (JSON strings are UTF-8).
        assert_eq!(escape("héllo"), "\"héllo\"");
    }

    #[test]
    fn containers_render_in_order() {
        let v = Json::obj([
            ("b", Json::U64(1)),
            ("a", Json::Arr(vec![Json::Null, Json::str("x")])),
        ]);
        assert_eq!(v.render(), "{\"b\":1,\"a\":[null,\"x\"]}");
    }
}
