//! A minimal hand-rolled JSON value tree and serializer.
//!
//! The build is fully offline, so the exporters cannot lean on serde.
//! This module provides exactly what they need: a value tree, correct
//! string escaping, and deterministic rendering (object keys keep
//! insertion order; callers that need stable output insert in a stable
//! order).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, rendered without a decimal point.
    U64(u64),
    /// A signed integer, rendered without a decimal point.
    I64(i64),
    /// A float. Non-finite values render as `null` (JSON has no NaN).
    F64(f64),
    /// A string, escaped on render.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Parses a JSON document (the inverse of [`Json::render`]).
    ///
    /// Integers without fraction/exponent parse as [`Json::U64`] /
    /// [`Json::I64`]; everything else numeric parses as [`Json::F64`].
    /// Trailing non-whitespace after the value is an error. This is
    /// the reader half of the offline (serde-free) JSON support and
    /// exists for tools like `mmm-inspect` that load run exports back.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Looks up a key in an object (None for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers widen losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's key/value pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Rust's shortest-roundtrip Display is valid JSON
                    // for finite floats.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Appends `s` as a quoted, escaped JSON string.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes a string for embedding in JSON (including the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_escaped(&mut out, s);
    out
}

/// Recursive-descent JSON reader over the raw bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // slicing at char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid number")?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(42).render(), "42");
        assert_eq!(Json::I64(-7).render(), "-7");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape_specials() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(escape("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(escape("ctrl\u{01}"), "\"ctrl\\u0001\"");
        // Unicode passes through unescaped (JSON strings are UTF-8).
        assert_eq!(escape("héllo"), "\"héllo\"");
    }

    #[test]
    fn containers_render_in_order() {
        let v = Json::obj([
            ("b", Json::U64(1)),
            ("a", Json::Arr(vec![Json::Null, Json::str("x")])),
        ]);
        assert_eq!(v.render(), "{\"b\":1,\"a\":[null,\"x\"]}");
    }

    #[test]
    fn parse_round_trips_render() {
        let v = Json::obj([
            ("b", Json::U64(1)),
            ("neg", Json::I64(-7)),
            ("f", Json::F64(1.25)),
            ("s", Json::str("a\"b\\c\nd")),
            ("arr", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("obj", Json::obj([("k", Json::str("héllo"))])),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).expect("round trip"), v);
    }

    #[test]
    fn parse_handles_whitespace_and_types() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5 , -3 ] , \"b\" : null } ").expect("parses");
        let arr = v.get("a").and_then(Json::as_arr).expect("array");
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2], Json::I64(-3));
        assert_eq!(v.get("b"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::parse("1e3").expect("exp"), Json::F64(1000.0));
        assert_eq!(
            Json::parse("\"\\u0041\"").expect("unicode escape"),
            Json::str("A")
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parse_handles_escaped_strings() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\/d\ne\tf\rg\bh\fi""#).expect("escapes"),
            Json::str("a\"b\\c/d\ne\tf\rg\u{8}h\u{c}i")
        );
        // \u escapes decode BMP scalars; raw UTF-8 passes through.
        assert_eq!(Json::parse(r#""\u00e9A""#).expect("bmp"), Json::str("éA"));
        assert_eq!(Json::parse("\"é😀\"").expect("raw utf-8"), Json::str("é😀"));
        // Our writer never emits surrogate pairs, so the parser maps
        // every surrogate escape — paired or lone — to U+FFFD.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).expect("surrogate pair"),
            Json::str("\u{fffd}\u{fffd}")
        );
        assert_eq!(
            Json::parse(r#""\ud800""#).expect("lone surrogate"),
            Json::str("\u{fffd}")
        );
        // Escapes survive inside object keys and values.
        let v = Json::parse(r#"{"ke\ny":"va\"lue"}"#).expect("escaped members");
        assert_eq!(v.get("ke\ny").and_then(Json::as_str), Some("va\"lue"));
        // Malformed escapes are rejected, not silently dropped.
        assert!(Json::parse(r#""\q""#).is_err(), "unknown escape");
        assert!(Json::parse(r#""\u12""#).is_err(), "truncated \\u escape");
        assert!(Json::parse(r#""\u12zz""#).is_err(), "non-hex \\u escape");
    }

    #[test]
    fn parse_handles_nested_containers() {
        let text = r#"{"a":[[1,[2,[3]]],{"b":{"c":[{"d":null}]}}],"e":{}}"#;
        let v = Json::parse(text).expect("nested");
        let a = v.get("a").and_then(Json::as_arr).expect("outer array");
        let inner = a[0].as_arr().expect("inner array");
        assert_eq!(inner[0].as_u64(), Some(1));
        assert_eq!(
            a[1].get("b")
                .and_then(|b| b.get("c"))
                .and_then(Json::as_arr)
                .and_then(|c| c.first())
                .and_then(|d| d.get("d")),
            Some(&Json::Null)
        );
        assert_eq!(v.get("e").and_then(Json::as_obj).map(|o| o.len()), Some(0));
        assert_eq!(Json::parse("[]").expect("empty array"), Json::Arr(vec![]));
        // Round trip preserves deep structure exactly.
        assert_eq!(Json::parse(&v.render()).expect("round trip"), v);
    }

    #[test]
    fn parse_handles_exponent_numbers() {
        assert_eq!(Json::parse("1.5e-3").expect("neg exp"), Json::F64(0.0015));
        assert_eq!(Json::parse("2E+8").expect("upper exp"), Json::F64(2e8));
        assert_eq!(
            Json::parse("-1.25e2").expect("signed mantissa"),
            Json::F64(-125.0)
        );
        assert_eq!(Json::parse("0.5e0").expect("zero exp"), Json::F64(0.5));
        // Integers without fraction or exponent stay integral.
        assert_eq!(
            Json::parse("9007199254740993").expect("big int"),
            Json::U64(9007199254740993)
        );
        assert!(Json::parse("1e").is_err(), "exponent needs digits");
        assert!(Json::parse("1e+").is_err(), "signed exponent needs digits");
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        for text in [
            "{\"a\":1}}",
            "[1,2]]",
            "null null",
            "42 7",
            "\"s\"\"t\"",
            "true,",
        ] {
            let err = Json::parse(text).expect_err("trailing garbage rejected");
            assert!(
                err.contains("trailing data"),
                "{text:?}: unexpected error {err:?}"
            );
        }
        // Trailing whitespace alone is fine.
        assert_eq!(Json::parse("17 \n ").expect("ws"), Json::U64(17));
    }
}
