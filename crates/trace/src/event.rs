//! The typed, cycle-stamped event taxonomy.
//!
//! Every observable state change the paper reasons about — mode
//! transitions, fault injection and masking, PAB denials, Reunion
//! check mismatches, serializing-instruction stalls, scheduling
//! decisions, and user/OS phase boundaries — is one variant here.
//! Events are cheap POD values; constructing one allocates nothing,
//! so the tracing hot path stays off the simulator's profile.

use crate::json::Json;
use mmm_types::{CoreId, Cycle, VcpuId};

/// Which mode-transition microprogram ran (paper §3.4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransitionKind {
    /// A VCPU moved from performance to reliable (DMR) execution.
    EnterDmr,
    /// A VCPU left DMR for performance execution (includes the mute
    /// L2 flush walk under MMM-TP).
    LeaveDmr,
    /// A gang switch between two DMR VCPUs.
    DmrSwitch,
    /// A gang switch between two performance VCPUs.
    PerfSwitch,
}

impl TransitionKind {
    /// Stable lowercase label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            TransitionKind::EnterDmr => "enter_dmr",
            TransitionKind::LeaveDmr => "leave_dmr",
            TransitionKind::DmrSwitch => "dmr_switch",
            TransitionKind::PerfSwitch => "perf_switch",
        }
    }
}

/// What the scheduler decided to do with a core (or core pair).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedAction {
    /// A VCPU was placed on a single core in performance mode.
    InstallSolo,
    /// A VCPU was placed on a vocal/mute pair in DMR mode.
    InstallDmr,
    /// A performance-mode VCPU was removed from its core.
    EvictSolo,
    /// A DMR VCPU was removed from its pair.
    EvictDmr,
    /// A timeslice-driven gang switch started.
    GangSwitch,
    /// An overcommit rotation started.
    OvercommitSwitch,
    /// The single-OS poller moved a VCPU between modes.
    SingleOsPoll,
}

impl SchedAction {
    /// Stable lowercase label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            SchedAction::InstallSolo => "install_solo",
            SchedAction::InstallDmr => "install_dmr",
            SchedAction::EvictSolo => "evict_solo",
            SchedAction::EvictDmr => "evict_dmr",
            SchedAction::GangSwitch => "gang_switch",
            SchedAction::OvercommitSwitch => "overcommit_switch",
            SchedAction::SingleOsPoll => "single_os_poll",
        }
    }
}

/// One observable simulator event. The cycle stamp lives in
/// [`TraceRecord`]; variants carry only event-specific payload.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A mode-transition microprogram ran on `core`, completing at
    /// `done` (the record's stamp is the start cycle).
    ModeTransition {
        /// The core that paid the transition cost.
        core: CoreId,
        /// Which microprogram ran.
        kind: TransitionKind,
        /// Completion cycle; `done - at` is the transition cost.
        done: Cycle,
    },
    /// The injector flipped a bit at `site` on `core`.
    FaultInjected {
        /// The struck core.
        core: CoreId,
        /// Stable site label (`core_logic`, `tlb_permission`, `priv_reg`).
        site: &'static str,
    },
    /// An injected fault was contained or proved harmless.
    FaultMasked {
        /// The struck core.
        core: CoreId,
        /// Stable site label.
        site: &'static str,
        /// How it was masked (`dmr_detected`, `idle`, `pab_blocked`, ...).
        reason: &'static str,
    },
    /// The PAB refused a performance-mode store to a reliable page.
    PabDeny {
        /// The storing core.
        core: CoreId,
        /// The page number that was protected.
        page: u64,
    },
    /// A serializing instruction stalled the pipeline.
    SiStall {
        /// The stalled core.
        core: CoreId,
        /// Stall length in cycles.
        cycles: u64,
    },
    /// The scheduler (re)mapped VCPUs onto cores.
    SchedDecision {
        /// What happened.
        action: SchedAction,
        /// The core acted on (the vocal for pair actions).
        core: CoreId,
        /// The mute core, for pair actions.
        partner: Option<CoreId>,
        /// The VCPU involved, when one is.
        vcpu: Option<VcpuId>,
    },
    /// The Reunion check stage saw vocal/mute fingerprints disagree.
    CheckMismatch {
        /// The vocal core of the pair.
        vocal: CoreId,
        /// The mute core of the pair.
        mute: CoreId,
        /// `input_incoherence` or `fault`.
        cause: &'static str,
    },
    /// A VCPU crossed the user/OS boundary.
    PhaseBoundary {
        /// The core running the VCPU.
        core: CoreId,
        /// The VCPU that trapped or returned.
        vcpu: VcpuId,
        /// `true` on OS entry, `false` on return to user.
        to_os: bool,
    },
}

impl Event {
    /// Stable lowercase name of the variant, used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            Event::ModeTransition { .. } => "mode_transition",
            Event::FaultInjected { .. } => "fault_injected",
            Event::FaultMasked { .. } => "fault_masked",
            Event::PabDeny { .. } => "pab_deny",
            Event::SiStall { .. } => "si_stall",
            Event::SchedDecision { .. } => "sched_decision",
            Event::CheckMismatch { .. } => "check_mismatch",
            Event::PhaseBoundary { .. } => "phase_boundary",
        }
    }

    /// The core this event is attributed to in per-core timelines.
    pub fn core(&self) -> CoreId {
        match *self {
            Event::ModeTransition { core, .. }
            | Event::FaultInjected { core, .. }
            | Event::FaultMasked { core, .. }
            | Event::PabDeny { core, .. }
            | Event::SiStall { core, .. }
            | Event::SchedDecision { core, .. }
            | Event::PhaseBoundary { core, .. } => core,
            Event::CheckMismatch { vocal, .. } => vocal,
        }
    }

    /// Event-specific payload as a JSON object (without name/stamp).
    pub fn args(&self) -> Json {
        match *self {
            Event::ModeTransition { kind, done, .. } => {
                Json::obj([("kind", Json::str(kind.label())), ("done", Json::U64(done))])
            }
            Event::FaultInjected { site, .. } => Json::obj([("site", Json::str(site))]),
            Event::FaultMasked { site, reason, .. } => {
                Json::obj([("site", Json::str(site)), ("reason", Json::str(reason))])
            }
            Event::PabDeny { page, .. } => Json::obj([("page", Json::U64(page))]),
            Event::SiStall { cycles, .. } => Json::obj([("cycles", Json::U64(cycles))]),
            Event::SchedDecision {
                action,
                partner,
                vcpu,
                ..
            } => Json::obj([
                ("action", Json::str(action.label())),
                (
                    "partner",
                    partner.map_or(Json::Null, |c| Json::U64(c.0 as u64)),
                ),
                ("vcpu", vcpu.map_or(Json::Null, |v| Json::U64(v.0 as u64))),
            ]),
            Event::CheckMismatch { vocal, mute, cause } => Json::obj([
                ("vocal", Json::U64(vocal.0 as u64)),
                ("mute", Json::U64(mute.0 as u64)),
                ("cause", Json::str(cause)),
            ]),
            Event::PhaseBoundary { vcpu, to_os, .. } => Json::obj([
                ("vcpu", Json::U64(vcpu.0 as u64)),
                ("to_os", Json::Bool(to_os)),
            ]),
        }
    }
}

/// A recorded event: a monotone sequence number, the cycle it
/// happened, and the event itself.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// Monotone per-sink sequence number (survives ring overwrite, so
    /// consumers can tell how many older records were dropped).
    pub seq: u64,
    /// The cycle the event occurred.
    pub at: Cycle,
    /// The event payload.
    pub event: Event,
}
