//! Trace sinks and the cheap tracer handle threaded through the
//! simulator.
//!
//! The design goal is that an untraced run costs *nothing*: the
//! default [`Tracer`] holds no sink, `emit` is one branch on a
//! `None`, and the event-constructing closure is never called. Traced
//! runs record into a bounded [`RingSink`] so memory stays flat no
//! matter how long the run is — the newest `capacity` events survive.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use mmm_types::Cycle;

use crate::event::{Event, TraceRecord};

/// Anything that can accept cycle-stamped events.
pub trait TraceSink {
    /// Records one event at cycle `at`.
    fn record(&mut self, at: Cycle, event: Event);
    /// Whether recording has any effect (lets callers skip payload
    /// construction).
    fn enabled(&self) -> bool {
        true
    }
}

/// The zero-overhead default: discards everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn record(&mut self, _at: Cycle, _event: Event) {}
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

/// A bounded ring buffer of the newest `capacity` records.
#[derive(Clone, Debug)]
pub struct RingSink {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    next_seq: u64,
}

impl RingSink {
    /// Creates a sink keeping at most `capacity` records (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 0,
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no records are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The bound this sink was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total records ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Records overwritten by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.next_seq - self.buf.len() as u64
    }

    /// The surviving records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Clones the surviving records out, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.buf.iter().cloned().collect()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, at: Cycle, event: Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(TraceRecord {
            seq: self.next_seq,
            at,
            event,
        });
        self.next_seq += 1;
    }
}

/// A cheap, cloneable handle to an optional shared ring sink.
///
/// This is what the simulator components hold. `Tracer::default()` is
/// off — no allocation, and [`Tracer::emit`] compiles to a single
/// branch. [`Tracer::ring`] turns tracing on; clones share the sink.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    sink: Option<Rc<RefCell<RingSink>>>,
}

impl Tracer {
    /// The zero-overhead disabled tracer (same as `default()`).
    pub fn off() -> Self {
        Self { sink: None }
    }

    /// An enabled tracer recording into a fresh ring of `capacity`
    /// records. Clones of this handle share the ring.
    pub fn ring(capacity: usize) -> Self {
        Self {
            sink: Some(Rc::new(RefCell::new(RingSink::new(capacity)))),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.sink.is_some()
    }

    /// Records the event built by `f` at cycle `at`. When tracing is
    /// off, `f` is never called — payload construction costs nothing.
    #[inline]
    pub fn emit(&self, at: Cycle, f: impl FnOnce() -> Event) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().record(at, f());
        }
    }

    /// Clones out the surviving records, oldest first (empty when off).
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.sink
            .as_ref()
            .map_or_else(Vec::new, |s| s.borrow().snapshot())
    }

    /// Total records ever recorded (0 when off).
    pub fn total_recorded(&self) -> u64 {
        self.sink
            .as_ref()
            .map_or(0, |s| s.borrow().total_recorded())
    }

    /// Records overwritten by the ring bound (0 when off).
    pub fn dropped(&self) -> u64 {
        self.sink.as_ref().map_or(0, |s| s.borrow().dropped())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_types::CoreId;

    fn ev(i: u64) -> Event {
        Event::SiStall {
            core: CoreId(0),
            cycles: i,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(1, ev(1));
    }

    #[test]
    fn ring_keeps_newest() {
        let mut s = RingSink::new(3);
        for i in 0..10u64 {
            s.record(i, ev(i));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.total_recorded(), 10);
        assert_eq!(s.dropped(), 7);
        let stamps: Vec<u64> = s.records().map(|r| r.at).collect();
        assert_eq!(stamps, vec![7, 8, 9]);
    }

    #[test]
    fn tracer_off_never_builds_events() {
        let t = Tracer::off();
        let mut built = false;
        t.emit(5, || {
            built = true;
            ev(0)
        });
        assert!(!built, "disabled tracer must not construct events");
        assert!(!t.is_on());
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn tracer_clones_share_the_ring() {
        let a = Tracer::ring(8);
        let b = a.clone();
        a.emit(1, || ev(1));
        b.emit(2, || ev(2));
        let snap = a.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].at, 1);
        assert_eq!(snap[1].at, 2);
        assert_eq!(snap[0].seq, 0);
        assert_eq!(snap[1].seq, 1);
    }
}
