//! The flight recorder: interval snapshots of the metrics registry.
//!
//! A [`Sampler`] turns the end-of-run [`MetricsRegistry`] snapshot into
//! a time-series: every `interval` simulated cycles the simulator hands
//! it the current cumulative registry and the sampler stores what
//! *moved* since the previous boundary — counter deltas, gauge last
//! values, and log2-bucket histogram deltas (running stats are skipped;
//! the layers that matter export parallel histograms instead). The
//! result is a compact [`MetricsSeries`] exportable as a
//! `*.metrics.jsonl` file or as Perfetto counter tracks.
//!
//! Like [`Tracer`](crate::Tracer), the disabled handle is free: a
//! `Sampler::off()` holds no allocation and the simulator's per-tick
//! check compiles to a single compare against a sentinel cycle.

use std::cell::RefCell;
use std::rc::Rc;

use mmm_types::stats::Log2Histogram;
use mmm_types::Cycle;

use crate::json::Json;
use crate::metrics::MetricsRegistry;

/// One sampling boundary: what moved during the preceding interval.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSample {
    /// Boundary cycle, relative to the start of the measured window.
    pub at: Cycle,
    /// Counter increases since the previous boundary, name-sorted;
    /// counters that did not move are omitted.
    pub counters: Vec<(String, u64)>,
    /// Gauge values as of this boundary, name-sorted (last-value
    /// semantics — gauges are not deltas).
    pub gauges: Vec<(String, f64)>,
    /// Histogram growth since the previous boundary, name-sorted;
    /// histograms with no new observations are omitted. `max` stays
    /// cumulative (see [`Log2Histogram::delta_since`]).
    pub histograms: Vec<(String, Log2Histogram)>,
}

impl MetricsSample {
    /// The sample as one JSON object (one `metrics.jsonl` line).
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::U64(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::F64(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| (k.clone(), histogram_json(h)))
                .collect(),
        );
        Json::obj([
            ("at", Json::U64(self.at)),
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }
}

/// A histogram delta as JSON: summary fields plus the sparse nonzero
/// buckets as `[bucket_index, count]` pairs.
fn histogram_json(h: &Log2Histogram) -> Json {
    let buckets = h
        .bucket_counts()
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| Json::Arr(vec![Json::U64(i as u64), Json::U64(c)]))
        .collect();
    Json::obj([
        ("count", Json::U64(h.count())),
        ("mean", Json::F64(h.mean())),
        ("max", Json::U64(h.max())),
        ("buckets", Json::Arr(buckets)),
    ])
}

/// The recorded time-series: a fixed cadence plus one sample per
/// boundary, in time order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSeries {
    /// Sampling cadence in simulated cycles.
    pub interval: Cycle,
    /// Samples in increasing `at` order.
    pub samples: Vec<MetricsSample>,
}

impl MetricsSeries {
    /// Renders the series as JSONL: a header line carrying the cadence
    /// and run identity, then one line per sample.
    pub fn to_jsonl(&self, config: &str, benchmark: &str) -> String {
        let mut out = Json::obj([
            ("interval", Json::U64(self.interval)),
            ("config", Json::str(config)),
            ("benchmark", Json::str(benchmark)),
            ("samples", Json::U64(self.samples.len() as u64)),
        ])
        .render();
        out.push('\n');
        for s in &self.samples {
            out.push_str(&s.to_json().render());
            out.push('\n');
        }
        out
    }

    /// The series as Chrome trace-event counter events (`"ph":"C"`),
    /// one per counter delta and gauge per sample, timestamps in
    /// sample order (so per-name timestamps are monotone).
    pub fn counter_events(&self) -> Vec<Json> {
        let mut events = Vec::new();
        for s in &self.samples {
            for (name, v) in &s.counters {
                events.push(counter_event(name, s.at, Json::U64(*v)));
            }
            for (name, v) in &s.gauges {
                events.push(counter_event(name, s.at, Json::F64(*v)));
            }
        }
        events
    }
}

/// One Perfetto counter-track event.
fn counter_event(name: &str, at: Cycle, value: Json) -> Json {
    Json::obj([
        ("name", Json::str(name)),
        ("ph", Json::str("C")),
        ("pid", Json::U64(1)),
        ("ts", Json::U64(at)),
        ("args", Json::Obj(vec![("value".to_string(), value)])),
    ])
}

/// Shared state behind an enabled sampler handle.
#[derive(Clone, Debug)]
struct SamplerCore {
    interval: Cycle,
    /// Cumulative registry as of the last boundary (deltas subtract
    /// against this).
    base: MetricsRegistry,
    series: MetricsSeries,
}

/// A cheap, cloneable handle to an optional shared flight recorder.
///
/// `Sampler::off()` (the default) holds nothing: no allocation, and
/// every query on it is a branch on `None`. [`Sampler::every`] turns
/// sampling on; clones share the recording.
#[derive(Clone, Debug, Default)]
pub struct Sampler {
    inner: Option<Rc<RefCell<SamplerCore>>>,
}

impl Sampler {
    /// The zero-overhead disabled sampler (same as `default()`).
    pub fn off() -> Self {
        Self { inner: None }
    }

    /// An enabled sampler taking a boundary every `interval` simulated
    /// cycles. Panics if `interval` is zero.
    pub fn every(interval: Cycle) -> Self {
        assert!(interval > 0, "sampling interval must be nonzero");
        Self {
            inner: Some(Rc::new(RefCell::new(SamplerCore {
                interval,
                base: MetricsRegistry::new(),
                series: MetricsSeries {
                    interval,
                    samples: Vec::new(),
                },
            }))),
        }
    }

    /// Whether boundaries are being recorded.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// The sampling cadence, if enabled.
    pub fn interval(&self) -> Option<Cycle> {
        self.inner.as_ref().map(|c| c.borrow().interval)
    }

    /// The sample boundary following `now`, as registered with the
    /// system's event wheel: one cadence past `now` when sampling is
    /// on, [`Cycle::MAX`] when off (the parked-slot sentinel — a
    /// disabled sampler never pins the clock).
    pub fn next_boundary(&self, now: Cycle) -> Cycle {
        match self.interval() {
            Some(interval) => now + interval,
            None => Cycle::MAX,
        }
    }

    /// Discards any recorded samples and re-bases deltas on `current`
    /// (the cumulative registry right now). Called when measurement
    /// (re)starts so warmup movement never leaks into the series.
    pub fn rebase(&self, current: &MetricsRegistry) {
        if let Some(inner) = &self.inner {
            let mut core = inner.borrow_mut();
            core.base = current.clone();
            core.series.samples.clear();
        }
    }

    /// Records a boundary at relative cycle `at`: stores what moved in
    /// `current` since the previous boundary, then makes `current` the
    /// new base. No-op when off.
    pub fn record(&self, at: Cycle, current: &MetricsRegistry) {
        let Some(inner) = &self.inner else { return };
        let mut core = inner.borrow_mut();
        let counters = current
            .counters()
            .filter_map(|(name, v)| {
                let delta = v.saturating_sub(core.base.counter(name));
                (delta > 0).then(|| (name.to_string(), delta))
            })
            .collect();
        let gauges = current
            .gauges()
            .map(|(name, v)| (name.to_string(), v))
            .collect();
        let empty = Log2Histogram::new();
        let histograms = current
            .histograms()
            .filter_map(|(name, h)| {
                let base = core.base.histogram(name).unwrap_or(&empty);
                let delta = h.delta_since(base);
                (delta.count() > 0).then(|| (name.to_string(), delta))
            })
            .collect();
        core.series.samples.push(MetricsSample {
            at,
            counters,
            gauges,
            histograms,
        });
        core.base = current.clone();
    }

    /// Clones out the recorded series (None when off).
    pub fn series(&self) -> Option<MetricsSeries> {
        self.inner.as_ref().map(|c| c.borrow().series.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(c: u64, g: f64, h: &[u64]) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.count("a.ops", c);
        m.gauge("a.level", g);
        for &v in h {
            m.observe("a.lat", v);
        }
        m
    }

    #[test]
    fn off_sampler_is_inert() {
        let s = Sampler::off();
        assert!(!s.is_on());
        assert_eq!(s.interval(), None);
        s.record(10, &registry(1, 0.5, &[3]));
        assert!(s.series().is_none());
    }

    #[test]
    fn record_stores_deltas_and_last_values() {
        let s = Sampler::every(10);
        s.rebase(&MetricsRegistry::new());
        s.record(10, &registry(5, 0.25, &[4, 4]));
        s.record(20, &registry(5, 0.75, &[4, 4, 900]));
        let series = s.series().expect("enabled");
        assert_eq!(series.interval, 10);
        assert_eq!(series.samples.len(), 2);

        let first = &series.samples[0];
        assert_eq!(first.counters, vec![("a.ops".to_string(), 5)]);
        assert_eq!(first.gauges, vec![("a.level".to_string(), 0.25)]);
        assert_eq!(first.histograms.len(), 1);
        assert_eq!(first.histograms[0].1.count(), 2);

        // Second interval: counter unchanged -> omitted; gauge keeps
        // last value; histogram delta is the single new observation.
        let second = &series.samples[1];
        assert!(second.counters.is_empty());
        assert_eq!(second.gauges, vec![("a.level".to_string(), 0.75)]);
        assert_eq!(second.histograms.len(), 1);
        assert_eq!(second.histograms[0].1.count(), 1);
        assert_eq!(second.histograms[0].1.max(), 900);
    }

    #[test]
    fn rebase_discards_warmup_movement() {
        let s = Sampler::every(100);
        s.record(50, &registry(3, 0.0, &[]));
        s.rebase(&registry(3, 0.0, &[]));
        s.record(100, &registry(3, 0.0, &[]));
        let series = s.series().expect("enabled");
        assert_eq!(series.samples.len(), 1, "pre-rebase sample dropped");
        assert!(
            series.samples[0].counters.is_empty(),
            "counter movement before rebase must not reappear"
        );
    }

    #[test]
    fn jsonl_has_header_then_samples() {
        let s = Sampler::every(10);
        s.rebase(&MetricsRegistry::new());
        s.record(10, &registry(2, 1.5, &[7]));
        let out = s.series().expect("on").to_jsonl("base", "oltp");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"interval\":10"), "{out}");
        assert!(lines[0].contains("\"config\":\"base\""), "{out}");
        assert!(lines[0].contains("\"benchmark\":\"oltp\""), "{out}");
        assert!(lines[1].contains("\"at\":10"), "{out}");
        assert!(lines[1].contains("\"a.ops\":2"), "{out}");
        assert!(lines[1].contains("\"buckets\":[[3,1]]"), "{out}");
    }

    #[test]
    fn counter_events_are_well_formed_and_monotone() {
        let s = Sampler::every(10);
        s.rebase(&MetricsRegistry::new());
        s.record(10, &registry(2, 1.0, &[]));
        s.record(20, &registry(4, 2.0, &[]));
        let events = s.series().expect("on").counter_events();
        assert_eq!(events.len(), 4, "counter + gauge per sample");
        let rendered: Vec<String> = events.iter().map(|e| e.render()).collect();
        assert!(rendered[0].contains("\"ph\":\"C\""), "{}", rendered[0]);
        assert!(rendered[0].contains("\"ts\":10"), "{}", rendered[0]);
        assert!(rendered[2].contains("\"ts\":20"), "{}", rendered[2]);
        assert!(rendered[0].contains("\"value\":2"), "{}", rendered[0]);
    }

    #[test]
    fn clones_share_the_recording() {
        let a = Sampler::every(5);
        let b = a.clone();
        a.record(5, &registry(1, 0.0, &[]));
        assert_eq!(b.series().expect("shared").samples.len(), 1);
    }
}
