//! Trace-driven simulation: record once, replay anywhere.
//!
//! Records a window of the OLTP workload, serializes it to the compact
//! binary format, decodes it back, and runs a core on the replay —
//! demonstrating the workflow for pinning a workload across simulator
//! versions or sweeping configurations over the *exact same*
//! instruction sequence.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use mixed_mode_multicore::cpu::{Core, ExecContext};
use mixed_mode_multicore::mem::MemorySystem;
use mixed_mode_multicore::prelude::*;
use mixed_mode_multicore::workload::{OpStream, Trace};
use mmm_types::{CoreId, VcpuId, VmId};

fn main() {
    let cfg = SystemConfig::default();

    // 1. Record a 200k-op window of OLTP.
    let mut stream = OpStream::new(Benchmark::Oltp.profile(), VmId(0), VcpuId(0), 42);
    let trace = Trace::record(&mut stream, 200_000);
    let s = trace.summary();
    println!(
        "recorded {} ops: {} loads, {} stores, {} branches, {} serializing, {} OS entries",
        s.total, s.loads, s.stores, s.branches, s.serializing, s.os_entries
    );

    // 2. Serialize / deserialize (this is what you would write to a
    //    file and check into a regression corpus).
    let bytes = trace.to_bytes();
    println!(
        "serialized to {} bytes ({:.1} bytes/op)",
        bytes.len(),
        bytes.len() as f64 / s.total as f64
    );
    let decoded = Trace::from_bytes(&bytes).expect("round trip");
    assert_eq!(decoded.ops(), trace.ops());

    // 3. Run a core on the replay and on the live stream; identical
    //    work, identical timing.
    let run = |ctx: ExecContext| {
        let mut core = Core::new(CoreId(0), &cfg);
        let mut mem = MemorySystem::new(&cfg);
        core.set_context(ctx);
        for now in 0..150_000u64 {
            core.tick(now, &mut mem);
        }
        core.stats().commits()
    };
    let live = run(ExecContext::new(OpStream::new(
        Benchmark::Oltp.profile(),
        VmId(0),
        VcpuId(0),
        42,
    )));
    let replayed = run(ExecContext::from_replay(decoded.replay()));
    println!("commits over 150k cycles — live: {live}, replayed: {replayed}");
    assert_eq!(live, replayed, "replay is cycle-equivalent");
    println!("trace-driven execution matches live execution exactly.");
}
