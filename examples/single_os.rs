//! Single-OS mixed mode: DMR for the kernel, full speed for the app
//! (paper Figure 1 and §5.3).
//!
//! A desktop user runs a performance application under an OS that must
//! stay reliable. Each VCPU runs user code solo on its vocal core; the
//! moment the thread enters the kernel (syscall, fault, interrupt) the
//! chip appropriates the paired core, re-creates and *verifies*
//! privileged state through the scratchpad, and executes the kernel
//! under Reunion DMR — then drops back to performance mode at the
//! return to user code.
//!
//! The paper predicts the resulting overhead from Table 2's switch
//! intervals: ~8% for Apache, <5% for the others. This example
//! measures it directly, against both an all-performance and an
//! all-DMR baseline.
//!
//! ```sh
//! cargo run --release --example single_os
//! ```

use mixed_mode_multicore::mmm::report::print_table;
use mixed_mode_multicore::mmm::{System, Workload};
use mixed_mode_multicore::prelude::*;

fn main() {
    let cfg = SystemConfig::default();
    let (warmup, measure) = (200_000, 1_500_000);
    let mut rows = Vec::new();
    for bench in [Benchmark::Apache, Benchmark::Oltp, Benchmark::Pmake] {
        let run = |w: Workload| {
            let mut sys = System::new(&cfg, w, 5).expect("valid config");
            sys.run_measured(warmup, measure)
        };
        let perf = run(Workload::NoDmr(bench));
        let dmr = run(Workload::ReunionDmr(bench));
        let mixed = run(Workload::SingleOsMixed(bench));

        let tp = |r: &mixed_mode_multicore::mmm::SystemReport| {
            r.total_user_commits() as f64 / r.cycles as f64
        };
        let overhead = (1.0 - tp(&mixed) / tp(&perf)) * 100.0;
        rows.push(vec![
            bench.name().to_string(),
            format!("{:.3}", tp(&perf)),
            format!("{:.3}", tp(&mixed)),
            format!("{:.3}", tp(&dmr)),
            format!("{overhead:.0}%"),
            format!(
                "{} @ {:.1}k/{:.1}k cy",
                mixed.transitions.enter.count(),
                mixed.transitions.enter.mean() / 1e3,
                mixed.transitions.leave.mean() / 1e3
            ),
        ]);
    }
    print_table(
        "Single-OS mixed mode: user throughput vs. the two pure baselines",
        &[
            "bench",
            "all-perf",
            "mixed",
            "all-DMR",
            "cost vs all-perf",
            "switches (enter/leave)",
        ],
        &rows,
    );
    println!(
        "\nThe mixed column keeps every kernel instruction under DMR while user \
         code runs unprotected — recovering most of the gap to the all-perf \
         baseline, at a total switching overhead bounded by the paper's §5.3 \
         analysis. (The cost column includes time the *kernel itself* runs \
         slower under DMR, not just the switches.)"
    );
}
