//! Consolidated server with differentiated reliability (paper Figure 2).
//!
//! A hosting provider runs two customers on one 16-core machine. The
//! premium customer's VM needs DMR-grade reliability; the economy
//! customer wants throughput and tolerates occasional faults. This
//! example compares all three policies on that scenario and prints
//! the service each customer receives.
//!
//! ```sh
//! cargo run --release --example consolidated_server
//! ```

use mixed_mode_multicore::mmm::report::print_table;
use mixed_mode_multicore::mmm::{MixedPolicy, System, Workload};
use mixed_mode_multicore::prelude::*;
use mmm_types::VmId;

fn main() {
    // Short slices so the example's cycle budget covers several
    // reliable/performance alternations.
    let mut cfg = SystemConfig::default();
    cfg.virt.timeslice_cycles = 150_000;
    let bench = Benchmark::Apache;
    let (warmup, measure) = (300_000, 1_200_000);
    println!(
        "Scenario: premium guest VM (reliable, 8 VCPUs) + economy guest(s) \
         (performance), both running {}.\n",
        bench.name()
    );

    let mut rows = Vec::new();
    for policy in [
        MixedPolicy::DmrBase,
        MixedPolicy::MmmIpc,
        MixedPolicy::MmmTp,
    ] {
        let mut sys = System::new(&cfg, Workload::Consolidated { bench, policy }, 7)
            .expect("valid consolidated config");
        let r = sys.run_measured(warmup, measure);
        let premium = r.vm_user_commits(VmId(0));
        let economy = r.vm_user_commits(VmId(1)) + r.vm_user_commits(VmId(2));
        rows.push(vec![
            policy.name().to_string(),
            premium.to_string(),
            economy.to_string(),
            format!("{:.3}", r.total_user_commits() as f64 / r.cycles as f64),
            format!(
                "{} x {:.1}k / {} x {:.1}k",
                r.transitions.enter.count(),
                r.transitions.enter.mean() / 1e3,
                r.transitions.leave.count(),
                r.transitions.leave.mean() / 1e3,
            ),
        ]);
    }
    print_table(
        "Differentiated service under each policy",
        &[
            "policy",
            "premium VM (user instr)",
            "economy guest(s)",
            "machine IPC",
            "enter/leave DMR",
        ],
        &rows,
    );
    println!(
        "\nReading the table: DMR Base protects everyone and wastes the economy \
         customer's money; MMM-IPC frees the redundant cores' check latency; \
         MMM-TP additionally schedules independent VCPUs onto the freed cores \
         (the paper's ~2x overall-throughput result), while the premium VM's \
         protection — and the VMM's — is never compromised."
    );
}
