//! Quickstart: measure what dual-modular redundancy costs, and what
//! mixed-mode operation buys back.
//!
//! Builds the paper's 16-core machine three times — all-performance,
//! all-DMR (Reunion), and mixed-mode (MMM-TP) — runs the same OLTP
//! workload on each, and prints the comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mixed_mode_multicore::mmm::{MixedPolicy, System, Workload};
use mixed_mode_multicore::prelude::*;
use mmm_types::VmId;

fn main() {
    // Short gang timeslices so this quickstart's small cycle budget
    // still covers several reliable/performance alternations (the
    // paper's 1 ms = 3 M-cycle slices need much longer runs).
    let mut cfg = SystemConfig::default();
    cfg.virt.timeslice_cycles = 100_000;
    let bench = Benchmark::Oltp;
    let (warmup, measure) = (150_000, 800_000);

    println!(
        "Machine: {} cores, {} DMR pairs, 3 GHz",
        cfg.cores,
        cfg.pairs()
    );
    println!(
        "Workload: {} | warmup {warmup} + measure {measure} cycles\n",
        bench.name()
    );

    // 1. Everything fast, nothing protected.
    let mut fast = System::new(&cfg, Workload::NoDmr2x(bench), 1).expect("valid");
    let fast_report = fast.run_measured(warmup, measure);

    // 2. Everything protected: Reunion DMR on all 16 cores.
    let mut safe = System::new(&cfg, Workload::ReunionDmr(bench), 1).expect("valid");
    let safe_report = safe.run_measured(warmup, measure);

    // 3. Mixed: one reliable guest VM keeps DMR; performance guests
    //    use all cores when scheduled (MMM-TP).
    let mut mixed = System::new(
        &cfg,
        Workload::Consolidated {
            bench,
            policy: MixedPolicy::MmmTp,
        },
        1,
    )
    .expect("valid");
    let mixed_report = mixed.run_measured(warmup, measure);

    let tp = |r: &mixed_mode_multicore::mmm::SystemReport| {
        r.total_user_commits() as f64 / r.cycles as f64
    };
    println!("throughput (user instructions / cycle, whole machine):");
    println!("  all-performance (No DMR 2X) : {:.3}", tp(&fast_report));
    println!(
        "  all-reliable (Reunion DMR)  : {:.3}  ({:.1}x slower)",
        tp(&safe_report),
        tp(&fast_report) / tp(&safe_report)
    );
    println!("  mixed-mode (MMM-TP)         : {:.3}", tp(&mixed_report));
    println!(
        "\nmixed-mode detail: reliable VM kept DMR protection \
         ({} user instructions committed),",
        mixed_report.vm_user_commits(VmId(0))
    );
    println!(
        "performance guests ran unprotected at full speed ({} instructions),",
        mixed_report.vm_user_commits(VmId(1)) + mixed_report.vm_user_commits(VmId(2))
    );
    println!(
        "with {} Enter-DMR transitions averaging {:.0} cycles and {} Leave-DMR \
         averaging {:.0} cycles.",
        mixed_report.transitions.enter.count(),
        mixed_report.transitions.enter.mean(),
        mixed_report.transitions.leave.count(),
        mixed_report.transitions.leave.mean()
    );
    println!(
        "\nReunion detected {} input-incoherence events and recovered every one.",
        safe_report.pairs.input_incoherence
    );
}
