//! Fault injection: watch the protection machinery earn its keep.
//!
//! Runs the mixed-mode consolidated server (MMM-TP) with an
//! aggressively high transient-fault rate and reports where every
//! fault went:
//!
//! * faults striking DMR cores are detected as fingerprint mismatches
//!   and recovered by Reunion;
//! * TLB/permission faults on performance cores become *wild stores*;
//!   the Protection Assistance Buffer blocks the ones aimed at
//!   reliable-only pages (the reliable VM, the scratchpad, the PAT
//!   itself) before they reach the L2;
//! * privileged-register corruption during performance mode is caught
//!   by the Enter-DMR verification step at the next mode switch;
//! * faults that only damage the performance domain are tolerated by
//!   assumption — exactly the paper's bargain.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use mixed_mode_multicore::mmm::{MixedPolicy, System, Workload};
use mixed_mode_multicore::prelude::*;

fn main() {
    let mut cfg = SystemConfig::default();
    cfg.virt.timeslice_cycles = 300_000;
    let mut sys = System::new(
        &cfg,
        Workload::Consolidated {
            bench: Benchmark::Pgoltp,
            policy: MixedPolicy::MmmTp,
        },
        11,
    )
    .expect("valid config");

    // ~1 fault per 100k core-cycles: absurdly high for silicon, ideal
    // for exercising the protection paths quickly.
    sys.enable_fault_injection(1e-5, 99);
    let report = sys.run_measured(100_000, 2_000_000);
    let f = report.faults;

    println!(
        "Injected {} transient faults over {} cycles:\n",
        f.injected, report.cycles
    );
    println!(
        "  detected by DMR fingerprint mismatch : {}",
        f.detected_by_dmr
    );
    println!(
        "  wild stores BLOCKED by the PAB       : {}",
        f.wild_stores_blocked
    );
    println!(
        "  wild stores into performance pages   : {}",
        f.wild_stores_corrupting
    );
    println!(
        "  priv-reg faults caught entering DMR  : {}",
        f.privreg_caught_at_entry
    );
    println!(
        "  silent performance-domain faults     : {}",
        f.silent_perf_faults
    );
    println!(
        "  struck idle cores                    : {}",
        f.on_idle_core
    );
    println!(
        "\nContainment: {}/{} faults were detected, blocked, or harmless;",
        f.contained(),
        f.injected
    );
    println!(
        "{} affected only the performance domain, which tolerates them by contract.",
        f.wild_stores_corrupting + f.silent_perf_faults
    );
    println!(
        "\nReunion recovered {} fingerprint mismatches ({} from mute input \
         incoherence) costing {} recovery cycles — and the reliable VM still \
         committed {} user instructions.",
        report.pairs.faults_detected + report.pairs.input_incoherence,
        report.pairs.input_incoherence,
        report.pairs.recovery_cycles,
        report.vm_user_commits(mmm_types::VmId(0))
    );
    assert_eq!(
        f.injected,
        f.contained() + f.wild_stores_corrupting + f.silent_perf_faults + pending_privreg(&f),
        "every fault is accounted for"
    );
}

/// Privileged-register corruptions still armed (no DMR entry yet).
fn pending_privreg(f: &mixed_mode_multicore::mmm::FaultStats) -> u64 {
    // Injected faults are classified eagerly except PrivReg arms that
    // have not reached their next Enter-DMR verification.
    f.injected
        - f.detected_by_dmr
        - f.wild_stores_blocked
        - f.wild_stores_corrupting
        - f.privreg_caught_at_entry
        - f.silent_perf_faults
        - f.on_idle_core
}
