#!/usr/bin/env python3
"""Validate a fault-forensics export against its main report export.

Usage::

    validate_forensics.py <bin>.faults.jsonl <bin>.jsonl

The faults file (written under ``MMM_FORENSICS=1``) is a sequence of
run groups: one ``{"kind": "mmm-faults-run", ...}`` header whose
``run`` field names the index of the paired report line in the main
JSONL export, followed by exactly ``records`` fault-record lines.

Checks, per the forensics contract:

* **Schema** — every record line carries exactly the fixed key set
  (``kind, run, id, at, core, site, mode, verdict, latency, reason,
  pages, chain, blackbox``); no optional keys, ``null`` where a field
  does not apply.
* **Verdict exhaustiveness** — every record lands on one of the six
  terminal labels; ``latency`` is non-null only on ``detected_by_*``
  records, ``reason`` only on ``masked``/``pending``.
* **Counter consistency** — per run and per site, the (site, verdict)
  sums reproduce the ``fault.site.<site>.{injected,detected,masked,
  escaped}`` counters in the paired report's metrics registry, and the
  number of records carrying a latency equals the
  ``fault.site.<site>.detection_latency_cycles`` histogram count.
* **Escape evidence** — every ``escaped`` record names at least one
  corrupted page and a non-empty black-box window; no other verdict
  carries either.

Exits non-zero (failing CI) on any violation. Stdlib only.
"""

import json
import sys

RECORD_KEYS = {
    "kind", "run", "id", "at", "core", "site", "mode", "verdict",
    "latency", "reason", "pages", "chain", "blackbox",
}
HEADER_KEYS = {"kind", "run", "config", "benchmark", "scheduler", "records"}
SITES = {"core_logic", "tlb_permission", "priv_reg"}
DETECTED = {"detected_by_dmr", "detected_by_pab", "detected_by_enter_dmr"}
VERDICTS = DETECTED | {"masked", "escaped", "pending"}
MODES = {"dmr_vocal", "dmr_mute", "idle", "perf"}


def fail(msg: str) -> None:
    print(f"validate_forensics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_jsonl(path: str) -> list:
    try:
        with open(path, encoding="utf-8") as f:
            return [json.loads(l) for l in f if l.strip()]
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check_record(where: str, rec: dict) -> None:
    if rec.keys() != RECORD_KEYS:
        extra = sorted(rec.keys() - RECORD_KEYS)
        missing = sorted(RECORD_KEYS - rec.keys())
        fail(f"{where}: schema drift (extra {extra}, missing {missing})")
    if rec["site"] not in SITES:
        fail(f"{where}: unknown site {rec['site']!r}")
    if rec["mode"] not in MODES:
        fail(f"{where}: unknown mode {rec['mode']!r}")
    verdict = rec["verdict"]
    if verdict not in VERDICTS:
        fail(f"{where}: verdict {verdict!r} is not one of {sorted(VERDICTS)}")
    for key in ("run", "id", "at", "core"):
        v = rec[key]
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            fail(f"{where}: {key} must be a non-negative integer")
    latency = rec["latency"]
    if latency is not None:
        if verdict not in DETECTED:
            fail(f"{where}: {verdict} record carries a latency")
        if not isinstance(latency, int) or isinstance(latency, bool) or latency < 0:
            fail(f"{where}: latency must be null or a non-negative integer")
    reason = rec["reason"]
    if (reason is not None) != (verdict in ("masked", "pending")):
        fail(f"{where}: reason must be set iff masked/pending (verdict {verdict})")
    if not isinstance(rec["chain"], list):
        fail(f"{where}: chain must be an array")
    for link in rec["chain"]:
        if not isinstance(link, dict) or link.keys() != {"at", "what"}:
            fail(f"{where}: malformed chain link {link!r}")
    pages, blackbox = rec["pages"], rec["blackbox"]
    if not isinstance(pages, list) or not isinstance(blackbox, list):
        fail(f"{where}: pages/blackbox must be arrays")
    if verdict == "escaped":
        if not pages:
            fail(f"{where}: escaped record names no corrupted pages")
        if not blackbox:
            fail(f"{where}: escaped record has an empty black-box window")
        for ev in blackbox:
            if not isinstance(ev, dict) or not {"seq", "at", "name"} <= ev.keys():
                fail(f"{where}: malformed black-box entry {ev!r}")
    elif pages or blackbox:
        fail(f"{where}: {verdict} record carries escape evidence")


def check_counters(path: str, run: int, report: dict, records: list) -> int:
    """Cross-checks one run's records against ``fault.site.*``.

    Returns the number of latency observations verified.
    """
    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        fail(f"report line {run}: no metrics registry")
    counters = metrics.get("counters", {})
    histograms = metrics.get("histograms", {})
    checked = 0
    for site in SITES:
        mine = [r for r in records if r["site"] == site]
        tally = {
            "injected": len(mine),
            "detected": sum(r["verdict"] in DETECTED for r in mine),
            "masked": sum(r["verdict"] == "masked" for r in mine),
            "escaped": sum(r["verdict"] == "escaped" for r in mine),
        }
        for what, n in tally.items():
            have = counters.get(f"fault.site.{site}.{what}", 0)
            if have != n:
                fail(
                    f"{path}: run {run}: {site}: records say {what}={n} "
                    f"but fault.site.{site}.{what}={have}"
                )
        with_latency = sum(r["latency"] is not None for r in mine)
        hist = histograms.get(f"fault.site.{site}.detection_latency_cycles")
        hist_count = hist.get("count", 0) if isinstance(hist, dict) else 0
        if with_latency != hist_count:
            fail(
                f"{path}: run {run}: {site}: {with_latency} records carry a "
                f"latency but the detection_latency_cycles histogram "
                f"counts {hist_count}"
            )
        checked += with_latency
    return checked


def main() -> None:
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} <bin>.faults.jsonl <bin>.jsonl")
    faults_path, report_path = sys.argv[1], sys.argv[2]
    lines = load_jsonl(faults_path)
    reports = [l for l in load_jsonl(report_path) if isinstance(l, dict)]
    if not lines:
        fail(f"{faults_path}: empty file (did the bin run with MMM_FORENSICS=1?)")

    runs = 0
    total_records = 0
    latencies = 0
    escaped = 0
    i = 0
    while i < len(lines):
        header = lines[i]
        if header.get("kind") != "mmm-faults-run":
            fail(f"{faults_path}: line {i + 1}: expected a run header")
        if header.keys() != HEADER_KEYS:
            fail(f"{faults_path}: line {i + 1}: malformed header keys")
        run, count = header["run"], header["records"]
        if not isinstance(run, int) or not (0 <= run < len(reports)):
            fail(
                f"{faults_path}: line {i + 1}: run {run!r} has no paired "
                f"report line in {report_path} ({len(reports)} lines)"
            )
        report = reports[run]
        for key in ("config", "benchmark", "scheduler"):
            if header[key] != report.get(key):
                fail(
                    f"{faults_path}: run {run}: header {key}="
                    f"{header[key]!r} but report says {report.get(key)!r}"
                )
        records = lines[i + 1 : i + 1 + count]
        if len(records) != count:
            fail(f"{faults_path}: run {run}: header promises {count} records, "
                 f"file ends after {len(records)}")
        for j, rec in enumerate(records):
            where = f"{faults_path}: run {run} record {j}"
            if not isinstance(rec, dict) or rec.get("kind") != "fault":
                fail(f"{where}: expected a fault record line")
            check_record(where, rec)
            if rec["run"] != run:
                fail(f"{where}: record run {rec['run']} != header run {run}")
        latencies += check_counters(faults_path, run, report, records)
        escaped += sum(r["verdict"] == "escaped" for r in records)
        total_records += count
        runs += 1
        i += 1 + count

    print(
        f"validate_forensics: OK: {runs} run(s), {total_records} fault "
        f"record(s), {latencies} latency observation(s), {escaped} escape(s) "
        f"with black-box evidence"
    )


if __name__ == "__main__":
    main()
