#!/usr/bin/env python3
"""Validate a campaign output directory written by ``mmm-campaign``.

Usage: ``validate_campaign.py <campaign-dir>``

Checks the directory layout (``manifest.json``, ``cells/``,
``aggregate.json``), that every cell record is a whole JSON document
carrying the campaign identity (kind, name, manifest hash) and a
lossless metrics block, and that the aggregate is self-consistent:
``cells_done`` matches both the record count and the ``cells`` array,
cell rows appear in ascending id order (the determinism contract),
every summary number is finite, the ``pareto`` id list matches the
per-row flags, and no host-dependent gauge (``sim_cycles_per_sec``)
leaked into the merged metrics. Exits non-zero (failing CI) on any
violation. Uses only the Python standard library.
"""

import json
import math
import os
import sys

SUMMARY_KEYS = (
    "throughput",
    "coverage",
    "transition_overhead",
    "faults_injected",
    "faults_detected",
)


def fail(msg: str) -> None:
    print(f"validate_campaign: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            obj = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(obj, dict):
        fail(f"{path}: expected an object, got {type(obj).__name__}")
    return obj


def check_summary(where: str, summary: object) -> None:
    if not isinstance(summary, dict):
        fail(f"{where}: summary must be an object")
    for key in SUMMARY_KEYS:
        if key not in summary:
            fail(f"{where}: summary missing {key!r}")
        v = summary[key]
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            fail(f"{where}: summary.{key} has type {type(v).__name__}")
        if not math.isfinite(float(v)) or float(v) < 0.0:
            fail(f"{where}: summary.{key} must be finite and >= 0, got {v}")


def check_no_host_gauges(where: str, metrics: object) -> None:
    if not isinstance(metrics, dict):
        fail(f"{where}: metrics must be an object")
    gauges = metrics.get("gauges", {})
    if not isinstance(gauges, dict):
        fail(f"{where}: metrics.gauges must be an object")
    for name in gauges:
        if "sim_cycles_per_sec" in name or "wall_seconds" in name:
            fail(f"{where}: host-dependent gauge {name!r} leaked into metrics")


def validate(camp_dir: str) -> None:
    manifest = load(os.path.join(camp_dir, "manifest.json"))
    for key in ("name", "warmup", "measure", "seeds", "grid"):
        if key not in manifest:
            fail(f"manifest.json: missing key {key!r}")

    agg_path = os.path.join(camp_dir, "aggregate.json")
    agg = load(agg_path)
    if agg.get("kind") != "mmm-campaign-aggregate":
        fail(f"{agg_path}: kind is {agg.get('kind')!r}")
    if agg.get("campaign") != manifest["name"]:
        fail(f"{agg_path}: campaign {agg.get('campaign')!r} != manifest name")
    mh = agg.get("manifest_hash")
    if not isinstance(mh, str) or len(mh) != 16:
        fail(f"{agg_path}: manifest_hash must be 16 hex chars, got {mh!r}")

    cells_dir = os.path.join(camp_dir, "cells")
    records = {}
    if os.path.isdir(cells_dir):
        for name in sorted(os.listdir(cells_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(cells_dir, name)
            rec = load(path)
            if rec.get("kind") != "mmm-campaign-cell":
                fail(f"{path}: kind is {rec.get('kind')!r}")
            if rec.get("campaign") != manifest["name"]:
                fail(f"{path}: campaign mismatch")
            if rec.get("manifest_hash") != mh:
                fail(f"{path}: manifest_hash mismatch")
            cid = rec.get("id")
            if not isinstance(cid, int) or isinstance(cid, bool) or cid < 0:
                fail(f"{path}: id must be a non-negative integer")
            if cid in records:
                fail(f"{path}: duplicate cell id {cid}")
            check_summary(path, rec.get("summary"))
            check_no_host_gauges(path, rec.get("metrics"))
            records[cid] = rec

    total = agg.get("cells_total")
    done = agg.get("cells_done")
    rows = agg.get("cells")
    if not isinstance(rows, list):
        fail(f"{agg_path}: cells must be an array")
    if done != len(records):
        fail(f"{agg_path}: cells_done={done} but {len(records)} records on disk")
    if done != len(rows):
        fail(f"{agg_path}: cells_done={done} but {len(rows)} cell rows")
    if not isinstance(total, int) or total < done:
        fail(f"{agg_path}: cells_total={total} inconsistent with cells_done={done}")
    if agg.get("complete") != (done == total):
        fail(f"{agg_path}: complete flag inconsistent ({done}/{total})")

    pareto_rows = []
    prev_id = -1
    for row in rows:
        cid = row.get("id")
        if not isinstance(cid, int) or cid <= prev_id:
            fail(f"{agg_path}: cell rows must be in strictly ascending id order")
        prev_id = cid
        if cid not in records:
            fail(f"{agg_path}: cell {cid} has no record on disk")
        check_summary(f"{agg_path} cell {cid}", row.get("summary"))
        if row.get("summary") != records[cid].get("summary"):
            fail(f"{agg_path}: cell {cid} summary differs from its record")
        if row.get("pareto") is True:
            pareto_rows.append(cid)
    if agg.get("pareto") != pareto_rows:
        fail(f"{agg_path}: pareto id list does not match per-row flags")
    if done > 0 and not pareto_rows:
        fail(f"{agg_path}: a non-empty campaign must have a non-empty frontier")
    check_no_host_gauges(agg_path, agg.get("merged_metrics"))

    print(
        f"validate_campaign: OK: {camp_dir}: {done}/{total} cells, "
        f"{len(pareto_rows)} on the Pareto frontier, manifest {mh}"
    )


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: validate_campaign.py <campaign-dir>")
    validate(sys.argv[1])


if __name__ == "__main__":
    main()
