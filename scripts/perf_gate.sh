#!/usr/bin/env bash
# Perf regression gate: rebuild the BENCH_* baselines and diff each
# against its committed copy with mmm-inspect, failing on throughput
# regressions past the threshold.
#
# Replaces the copy-pasted per-baseline block ci.yml used to carry
# three times. Controlled by the same variables as before:
#   MMM_PERF_GATE=off            skip the gate entirely
#   MMM_PERF_GATE_THRESHOLD=0.30 allow a larger regression
#   MMM_BLESS=1                  regenerate the baselines and skip the
#                                diff (commit the updated BENCH_*.json)
set -euo pipefail

if [ "${MMM_PERF_GATE:-on}" = "off" ]; then
  echo "perf gate disabled (MMM_PERF_GATE=off)"
  exit 0
fi

BASELINES=(BENCH_hotloop.json BENCH_faultloop.json BENCH_singleos.json)
STASH="$(mktemp -d)"
trap 'rm -rf "$STASH"' EXIT

for f in "${BASELINES[@]}"; do
  cp "$f" "$STASH/$f"
done

cargo run --release -p mmm-bench --bin perf_smoke
cargo run --release -p mmm-bench --bin perf_fault_smoke
python3 scripts/validate_bench.py "${BASELINES[@]}"

if [ "${MMM_BLESS:-0}" = "1" ]; then
  echo "perf baselines re-blessed (MMM_BLESS=1); commit the updated BENCH_*.json"
  exit 0
fi

for f in "${BASELINES[@]}"; do
  cargo run --release -p mmm-bench --bin mmm-inspect -- \
    "$STASH/$f" "$f" \
    --only sim_cycles_per_sec --direction down \
    --threshold "${MMM_PERF_GATE_THRESHOLD:-0.15}"
done
