#!/usr/bin/env python3
"""Validate ``BENCH_*.json`` perf-baseline files.

Usage: ``validate_bench.py <file> [<file> ...]``

Each file must be a single JSON object (one line) with the schema
written by ``perf_smoke``: identity fields, a positive measured cycle
count, finite non-negative wall/throughput numbers, a per-rep
wall-seconds list consistent with the rep count, and run provenance
(a non-negative Unix ``timestamp``, a non-empty ``host`` name, plus
``git_describe``/``git_commit``). Profiled baselines (``MMM_PROFILE=1``)
additionally carry a ``profile`` section whose phase shares must sum
to ~100%. Exits non-zero (failing CI) on any malformed file. Uses only
the Python standard library.
"""

import json
import math
import sys

REQUIRED = {
    "bench": str,
    "config": str,
    "benchmark": str,
    "warmup_cycles": int,
    "measured_cycles": int,
    "wall_seconds": (int, float),
    "sim_cycles_per_sec": (int, float),
    "reps": int,
    "rep_wall_seconds": list,
    "git_describe": str,
    "git_commit": str,
    "timestamp": (int, float),
    "host": str,
}

# Keys every embedded ``profile`` section (MMM_PROFILE=1 runs) must
# carry, written by the self-profiler's ``to_json``.
PROFILE_REQUIRED = ("total_nanos", "phase_nanos", "phase_shares", "wheel")


def fail(msg: str) -> None:
    print(f"validate_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            obj = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(obj, dict):
        fail(f"{path}: expected an object, got {type(obj).__name__}")
    for key, ty in REQUIRED.items():
        if key not in obj:
            fail(f"{path}: missing key {key!r}")
        if not isinstance(obj[key], ty) or isinstance(obj[key], bool):
            fail(f"{path}: {key!r} has type {type(obj[key]).__name__}")
    if obj["measured_cycles"] <= 0:
        fail(f"{path}: measured_cycles must be positive")
    for key in ("wall_seconds", "sim_cycles_per_sec"):
        v = float(obj[key])
        if not math.isfinite(v) or v < 0.0:
            fail(f"{path}: {key} must be finite and non-negative, got {v}")
    if obj["reps"] < 1:
        fail(f"{path}: reps must be >= 1")
    walls = obj["rep_wall_seconds"]
    if len(walls) != obj["reps"]:
        fail(f"{path}: rep_wall_seconds has {len(walls)} entries, reps={obj['reps']}")
    if not all(
        isinstance(w, (int, float)) and math.isfinite(float(w)) and float(w) >= 0.0
        for w in walls
    ):
        fail(f"{path}: rep_wall_seconds entries must be finite and non-negative")
    if float(obj["wall_seconds"]) != min(float(w) for w in walls):
        fail(f"{path}: wall_seconds must be the fastest repetition")
    ts = float(obj["timestamp"])
    if not math.isfinite(ts) or ts < 0.0:
        fail(f"{path}: timestamp must be finite and non-negative, got {ts}")
    if not obj["host"].strip():
        fail(f"{path}: host must be a non-empty string")
    if not obj["git_commit"].strip():
        fail(f"{path}: git_commit must be a non-empty string")
    if "profile" in obj:
        validate_profile(path, obj["profile"])
    print(
        f"validate_bench: OK: {path}: {obj['sim_cycles_per_sec']:.0f} "
        f"cycles/sec over {obj['measured_cycles']} cycles "
        f"({obj['reps']} reps, {obj['git_describe']})"
    )


def validate_profile(path: str, prof: object) -> None:
    """Validate the optional self-profiler section: phase shares must
    be finite, non-negative percentages summing to ~100 (or all zero
    for an empty window), and the wheel introspection block must be
    present with a sane skip efficiency."""
    if not isinstance(prof, dict):
        fail(f"{path}: profile must be an object, got {type(prof).__name__}")
    for key in PROFILE_REQUIRED:
        if key not in prof:
            fail(f"{path}: profile missing key {key!r}")
    total = prof["total_nanos"]
    if not isinstance(total, int) or isinstance(total, bool) or total < 0:
        fail(f"{path}: profile.total_nanos must be a non-negative integer")
    shares = prof["phase_shares"]
    if not isinstance(shares, dict) or not shares:
        fail(f"{path}: profile.phase_shares must be a non-empty object")
    for name, v in shares.items():
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            fail(f"{path}: profile.phase_shares.{name} has type {type(v).__name__}")
        if not math.isfinite(float(v)) or float(v) < 0.0:
            fail(f"{path}: profile.phase_shares.{name} must be finite and >= 0")
    share_sum = sum(float(v) for v in shares.values())
    if total > 0 and abs(share_sum - 100.0) > 0.5:
        fail(f"{path}: profile.phase_shares sum to {share_sum:.3f}, expected ~100")
    # The table-driven sampler and the batched ring refill took op
    # generation out of the hot loop's profile; keep it out.
    op_gen = float(shares.get("op_gen", 0.0))
    if total > 0 and op_gen >= 10.0:
        fail(f"{path}: profile.phase_shares.op_gen is {op_gen:.1f}%, expected < 10")
    wheel = prof["wheel"]
    if not isinstance(wheel, dict):
        fail(f"{path}: profile.wheel must be an object")
    for key in ("wake_hits", "ticks", "advanced_cycles", "skip_efficiency"):
        if key not in wheel:
            fail(f"{path}: profile.wheel missing key {key!r}")
    eff = wheel["skip_efficiency"]
    if (
        not isinstance(eff, (int, float))
        or isinstance(eff, bool)
        or not math.isfinite(float(eff))
        or not 0.0 <= float(eff) <= 1.0
    ):
        fail(f"{path}: profile.wheel.skip_efficiency must be in [0, 1], got {eff}")
    print(
        f"validate_bench: OK: {path}: profile section "
        f"({share_sum:.1f}% shares, skip efficiency {float(eff):.3f})"
    )


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: validate_bench.py <BENCH_*.json> [...]")
    for path in sys.argv[1:]:
        validate(path)


if __name__ == "__main__":
    main()
