#!/usr/bin/env python3
"""Validate ``BENCH_*.json`` perf-baseline files.

Usage: ``validate_bench.py <file> [<file> ...]``

Each file must be a single JSON object (one line) with the schema
written by ``perf_smoke``: identity fields, a positive measured cycle
count, finite non-negative wall/throughput numbers, a per-rep
wall-seconds list consistent with the rep count, and run provenance
(a non-negative Unix ``timestamp`` plus a non-empty ``host`` name). Exits non-zero
(failing CI) on any malformed file. Uses only the Python standard
library.
"""

import json
import math
import sys

REQUIRED = {
    "bench": str,
    "config": str,
    "benchmark": str,
    "warmup_cycles": int,
    "measured_cycles": int,
    "wall_seconds": (int, float),
    "sim_cycles_per_sec": (int, float),
    "reps": int,
    "rep_wall_seconds": list,
    "git_describe": str,
    "timestamp": (int, float),
    "host": str,
}


def fail(msg: str) -> None:
    print(f"validate_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            obj = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(obj, dict):
        fail(f"{path}: expected an object, got {type(obj).__name__}")
    for key, ty in REQUIRED.items():
        if key not in obj:
            fail(f"{path}: missing key {key!r}")
        if not isinstance(obj[key], ty) or isinstance(obj[key], bool):
            fail(f"{path}: {key!r} has type {type(obj[key]).__name__}")
    if obj["measured_cycles"] <= 0:
        fail(f"{path}: measured_cycles must be positive")
    for key in ("wall_seconds", "sim_cycles_per_sec"):
        v = float(obj[key])
        if not math.isfinite(v) or v < 0.0:
            fail(f"{path}: {key} must be finite and non-negative, got {v}")
    if obj["reps"] < 1:
        fail(f"{path}: reps must be >= 1")
    walls = obj["rep_wall_seconds"]
    if len(walls) != obj["reps"]:
        fail(f"{path}: rep_wall_seconds has {len(walls)} entries, reps={obj['reps']}")
    if not all(
        isinstance(w, (int, float)) and math.isfinite(float(w)) and float(w) >= 0.0
        for w in walls
    ):
        fail(f"{path}: rep_wall_seconds entries must be finite and non-negative")
    if float(obj["wall_seconds"]) != min(float(w) for w in walls):
        fail(f"{path}: wall_seconds must be the fastest repetition")
    ts = float(obj["timestamp"])
    if not math.isfinite(ts) or ts < 0.0:
        fail(f"{path}: timestamp must be finite and non-negative, got {ts}")
    if not obj["host"].strip():
        fail(f"{path}: host must be a non-empty string")
    print(
        f"validate_bench: OK: {path}: {obj['sim_cycles_per_sec']:.0f} "
        f"cycles/sec over {obj['measured_cycles']} cycles "
        f"({obj['reps']} reps, {obj['git_describe']})"
    )


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: validate_bench.py <BENCH_*.json> [...]")
    for path in sys.argv[1:]:
        validate(path)


if __name__ == "__main__":
    main()
