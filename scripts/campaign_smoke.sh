#!/usr/bin/env bash
# Campaign kill/resume gate: prove the keystone property end-to-end
# on the real binary.
#
# Runs the smoke manifest to completion in one directory; runs it
# again in a second directory but stops after a few cells (--limit, a
# deterministic stand-in for a mid-campaign kill: checkpoints on disk,
# grid incomplete), resumes it to completion, and then requires the
# two merged aggregates to be byte-identical (cmp) *and* to pass the
# mmm-inspect campaign diff at threshold 0. Any difference exits
# non-zero.
#
#   usage: campaign_smoke.sh [out-root]   (default: target/campaign-smoke)
set -euo pipefail

ROOT="${1:-target/campaign-smoke}"
MANIFEST=manifests/smoke.json
KILL_AFTER="${MMM_CAMPAIGN_KILL_AFTER:-5}"

rm -rf "$ROOT"
mkdir -p "$ROOT"

run() { cargo run --release -q -p mmm-bench --bin mmm-campaign -- "$@"; }

echo "== uninterrupted run"
run "$MANIFEST" --out "$ROOT/whole"

echo "== interrupted run (stopping after $KILL_AFTER cells)"
run "$MANIFEST" --out "$ROOT/split" --limit "$KILL_AFTER"

echo "== resume"
run "$MANIFEST" --out "$ROOT/split"

echo "== byte-identity gate"
cmp "$ROOT/whole/aggregate.json" "$ROOT/split/aggregate.json"

echo "== mmm-inspect campaign gate"
cargo run --release -q -p mmm-bench --bin mmm-inspect -- campaign \
  "$ROOT/whole/aggregate.json" "$ROOT/split/aggregate.json"

echo "== schema validation"
python3 scripts/validate_campaign.py "$ROOT/whole"
python3 scripts/validate_campaign.py "$ROOT/split"

echo "campaign_smoke: OK: resumed aggregate is byte-identical"
