#!/usr/bin/env bash
# Reproduces every table and figure of the paper's evaluation plus the
# extension studies, writing results/*.txt. Takes on the order of an
# hour at the default run lengths; scale with MMM_WARMUP / MMM_MEASURE
# / MMM_SEEDS.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release -p mmm-bench
mkdir -p results

export MMM_SEEDS="${MMM_SEEDS:-5}"
./target/release/fig5 --diagnostics | tee results/fig5.txt
./target/release/table1            | tee results/table1.txt
./target/release/table2            | tee results/table2.txt
./target/release/fig6              | tee results/fig6.txt
./target/release/pab_latency       | tee results/pab_latency.txt

export MMM_SEEDS=3
./target/release/overcommit        | tee results/overcommit.txt
./target/release/switch_sweep      | tee results/switch_sweep.txt
./target/release/ablations         | tee results/ablations.txt
./target/release/fault_coverage    | tee results/fault_coverage.txt

echo "done — see results/ and EXPERIMENTS.md"
