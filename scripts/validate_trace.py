#!/usr/bin/env python3
"""Validate the harness bins' machine-readable exports.

Two modes:

* ``validate_trace.py`` (no args) — reads JSONL report lines from
  stdin (the output of ``<bin> --json``) and checks every line is a
  well-formed report object with the expected top-level keys and a
  sane metrics registry.
* ``validate_trace.py trace <file>`` — checks a ``*.trace.json`` file
  is a well-formed Chrome trace-event document that Perfetto will
  load: a ``traceEvents`` array whose entries carry the mandatory
  ``ph``/``pid``/``ts`` fields, with at least one per-core mode slice.

Exits non-zero (failing CI) on any malformed input. Uses only the
Python standard library.
"""

import json
import sys

REPORT_KEYS = {"config", "benchmark", "cycles", "vcpus", "metrics"}
METRIC_SECTIONS = {"counters", "gauges", "histograms", "stats"}


def fail(msg: str) -> None:
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_report_line(n: int, line: str) -> None:
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as e:
        fail(f"line {n}: not valid JSON: {e}")
    if not isinstance(obj, dict):
        fail(f"line {n}: expected an object, got {type(obj).__name__}")
    missing = REPORT_KEYS - obj.keys()
    if missing:
        fail(f"line {n}: missing keys {sorted(missing)}")
    if not isinstance(obj["cycles"], int) or obj["cycles"] <= 0:
        fail(f"line {n}: cycles must be a positive integer")
    if not isinstance(obj["vcpus"], list) or not obj["vcpus"]:
        fail(f"line {n}: vcpus must be a non-empty array")
    for v in obj["vcpus"]:
        if not {"vcpu", "vm", "user_commits"} <= v.keys():
            fail(f"line {n}: malformed vcpu entry {v}")
    metrics = obj["metrics"]
    missing = METRIC_SECTIONS - metrics.keys()
    if missing:
        fail(f"line {n}: metrics missing sections {sorted(missing)}")
    counters = metrics["counters"]
    if counters.get("run.cycles") != obj["cycles"]:
        fail(f"line {n}: metrics counter run.cycles disagrees with cycles")
    if any(not isinstance(c, int) or c < 0 for c in counters.values()):
        fail(f"line {n}: counters must be non-negative integers")


def validate_jsonl_stdin() -> None:
    n = 0
    for raw in sys.stdin:
        line = raw.strip()
        if not line:
            continue
        n += 1
        validate_report_line(n, line)
    if n == 0:
        fail("no report lines on stdin (did the bin run with --json?)")
    print(f"validate_trace: OK: {n} report line(s)")


def validate_trace_file(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty array")
    mode_slices = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"{path}: traceEvents[{i}] is not an object")
        if "ph" not in ev or "pid" not in ev:
            fail(f"{path}: traceEvents[{i}] missing ph/pid")
        if ev["ph"] != "M" and "ts" not in ev:
            fail(f"{path}: traceEvents[{i}] missing ts")
        if ev["ph"] == "X":
            if not isinstance(ev.get("dur"), int) or ev["dur"] < 0:
                fail(f"{path}: traceEvents[{i}] X-slice needs integer dur")
            # Mode slices live on even tids (see mmm-trace's chrome.rs).
            if ev.get("tid", 1) % 2 == 0:
                mode_slices += 1
    if mode_slices == 0:
        fail(f"{path}: no per-core mode slices found")
    print(f"validate_trace: OK: {len(events)} trace events, {mode_slices} mode slice(s)")


def main() -> None:
    if len(sys.argv) == 1:
        validate_jsonl_stdin()
    elif len(sys.argv) == 3 and sys.argv[1] == "trace":
        validate_trace_file(sys.argv[2])
    else:
        fail(f"usage: {sys.argv[0]} [trace <file.trace.json>]")


if __name__ == "__main__":
    main()
