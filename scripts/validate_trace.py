#!/usr/bin/env python3
"""Validate the harness bins' machine-readable exports.

Two modes:

* ``validate_trace.py`` (no args) — reads JSONL report lines from
  stdin (the output of ``<bin> --json``) and checks every line is a
  well-formed report object with the expected top-level keys and a
  sane metrics registry.
* ``validate_trace.py trace <file>`` — checks a ``*.trace.json`` file
  is a well-formed Chrome trace-event document that Perfetto will
  load: a ``traceEvents`` array whose entries carry the mandatory
  ``ph``/``pid``/``ts`` fields, with at least one per-core mode slice,
  and whose counter-track events (``"ph":"C"``) are well-formed — a
  name, a non-negative integer ``ts`` monotone per counter name, and a
  numeric ``args.value``.
* ``validate_trace.py metrics <file>`` — checks a ``*.metrics.jsonl``
  flight-recorder export: a header line with a positive integer
  ``interval`` and a ``samples`` count matching the body, then sample
  lines with strictly increasing ``at``, non-negative integer counter
  deltas, and well-formed histogram deltas (``count``/``mean``/
  ``max``/``buckets`` with ``[index, count]`` pairs).

Exits non-zero (failing CI) on any malformed input. Uses only the
Python standard library.
"""

import json
import sys

REPORT_KEYS = {"config", "benchmark", "cycles", "vcpus", "metrics"}
METRIC_SECTIONS = {"counters", "gauges", "histograms", "stats"}


def fail(msg: str) -> None:
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_report_line(n: int, line: str) -> None:
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as e:
        fail(f"line {n}: not valid JSON: {e}")
    if not isinstance(obj, dict):
        fail(f"line {n}: expected an object, got {type(obj).__name__}")
    missing = REPORT_KEYS - obj.keys()
    if missing:
        fail(f"line {n}: missing keys {sorted(missing)}")
    if not isinstance(obj["cycles"], int) or obj["cycles"] <= 0:
        fail(f"line {n}: cycles must be a positive integer")
    if not isinstance(obj["vcpus"], list) or not obj["vcpus"]:
        fail(f"line {n}: vcpus must be a non-empty array")
    for v in obj["vcpus"]:
        if not {"vcpu", "vm", "user_commits"} <= v.keys():
            fail(f"line {n}: malformed vcpu entry {v}")
    metrics = obj["metrics"]
    missing = METRIC_SECTIONS - metrics.keys()
    if missing:
        fail(f"line {n}: metrics missing sections {sorted(missing)}")
    counters = metrics["counters"]
    if counters.get("run.cycles") != obj["cycles"]:
        fail(f"line {n}: metrics counter run.cycles disagrees with cycles")
    if any(not isinstance(c, int) or c < 0 for c in counters.values()):
        fail(f"line {n}: counters must be non-negative integers")


def validate_jsonl_stdin() -> None:
    n = 0
    for raw in sys.stdin:
        line = raw.strip()
        if not line:
            continue
        n += 1
        validate_report_line(n, line)
    if n == 0:
        fail("no report lines on stdin (did the bin run with --json?)")
    print(f"validate_trace: OK: {n} report line(s)")


def validate_trace_file(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty array")
    mode_slices = 0
    counters = 0
    last_counter_ts: dict = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"{path}: traceEvents[{i}] is not an object")
        if "ph" not in ev or "pid" not in ev:
            fail(f"{path}: traceEvents[{i}] missing ph/pid")
        if ev["ph"] != "M" and "ts" not in ev:
            fail(f"{path}: traceEvents[{i}] missing ts")
        if ev["ph"] == "X":
            if not isinstance(ev.get("dur"), int) or ev["dur"] < 0:
                fail(f"{path}: traceEvents[{i}] X-slice needs integer dur")
            # Mode slices live on even tids (see mmm-trace's chrome.rs).
            if ev.get("tid", 1) % 2 == 0:
                mode_slices += 1
        if ev["ph"] == "C":
            name = ev.get("name")
            if not isinstance(name, str) or not name:
                fail(f"{path}: traceEvents[{i}] counter needs a name")
            ts = ev.get("ts")
            if not isinstance(ts, int) or isinstance(ts, bool) or ts < 0:
                fail(f"{path}: traceEvents[{i}] counter needs integer ts >= 0")
            if ts < last_counter_ts.get(name, 0):
                fail(f"{path}: counter {name!r} timestamps go backwards at [{i}]")
            last_counter_ts[name] = ts
            value = ev.get("args", {}).get("value")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                fail(f"{path}: traceEvents[{i}] counter needs numeric args.value")
            counters += 1
    if mode_slices == 0:
        fail(f"{path}: no per-core mode slices found")
    print(
        f"validate_trace: OK: {len(events)} trace events, "
        f"{mode_slices} mode slice(s), {counters} counter event(s)"
    )


def validate_histogram(where: str, name: str, h) -> None:
    if not isinstance(h, dict):
        fail(f"{where}: histogram {name!r} is not an object")
    count = h.get("count")
    if not isinstance(count, int) or isinstance(count, bool) or count <= 0:
        fail(f"{where}: histogram {name!r} needs a positive count")
    mean = h.get("mean")
    if not isinstance(mean, (int, float)) or isinstance(mean, bool) or mean < 0:
        fail(f"{where}: histogram {name!r} needs a non-negative mean")
    hmax = h.get("max")
    if not isinstance(hmax, int) or isinstance(hmax, bool) or hmax < 0:
        fail(f"{where}: histogram {name!r} needs a non-negative integer max")
    buckets = h.get("buckets")
    if not isinstance(buckets, list):
        fail(f"{where}: histogram {name!r} needs a buckets array")
    total = 0
    for b in buckets:
        if (
            not isinstance(b, list)
            or len(b) != 2
            or not all(isinstance(x, int) and not isinstance(x, bool) for x in b)
            or b[1] <= 0
        ):
            fail(f"{where}: histogram {name!r} bucket {b!r} is not [index, count]")
        total += b[1]
    if total != count:
        fail(f"{where}: histogram {name!r} bucket counts sum {total} != count {count}")


def validate_metrics_file(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            lines = [json.loads(l) for l in f if l.strip()]
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not lines:
        fail(f"{path}: empty file")
    header, samples = lines[0], lines[1:]
    interval = header.get("interval")
    if not isinstance(interval, int) or isinstance(interval, bool) or interval <= 0:
        fail(f"{path}: header needs a positive integer interval")
    for key in ("config", "benchmark"):
        if not isinstance(header.get(key), str) or not header[key]:
            fail(f"{path}: header needs a non-empty {key!r}")
    if header.get("samples") != len(samples):
        fail(f"{path}: header says {header.get('samples')} samples, found {len(samples)}")
    prev_at = -1
    for i, s in enumerate(samples):
        where = f"{path}: sample {i}"
        at = s.get("at")
        if not isinstance(at, int) or isinstance(at, bool) or at < 0:
            fail(f"{where}: needs integer at >= 0")
        if at <= prev_at:
            fail(f"{where}: at={at} does not increase (previous {prev_at})")
        prev_at = at
        counters = s.get("counters")
        if not isinstance(counters, dict):
            fail(f"{where}: needs a counters object")
        for name, v in counters.items():
            if not isinstance(v, int) or isinstance(v, bool) or v <= 0:
                fail(f"{where}: counter {name!r} delta must be a positive integer")
        gauges = s.get("gauges")
        if not isinstance(gauges, dict):
            fail(f"{where}: needs a gauges object")
        for name, v in gauges.items():
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                fail(f"{where}: gauge {name!r} must be numeric")
        histograms = s.get("histograms")
        if not isinstance(histograms, dict):
            fail(f"{where}: needs a histograms object")
        for name, h in histograms.items():
            validate_histogram(where, name, h)
    print(
        f"validate_trace: OK: {path}: {len(samples)} sample(s) "
        f"at interval {interval}"
    )


def main() -> None:
    if len(sys.argv) == 1:
        validate_jsonl_stdin()
    elif len(sys.argv) == 3 and sys.argv[1] == "trace":
        validate_trace_file(sys.argv[2])
    elif len(sys.argv) == 3 and sys.argv[1] == "metrics":
        validate_metrics_file(sys.argv[2])
    else:
        fail(
            f"usage: {sys.argv[0]} "
            "[trace <file.trace.json> | metrics <file.metrics.jsonl>]"
        )


if __name__ == "__main__":
    main()
